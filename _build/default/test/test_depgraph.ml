(* Tests for dependence profiling (Definition 1) and access-class
   classification (Definitions 4-5), including the paper's own
   examples. *)

open Minic

let classify_first_loop src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  let lid =
    match p.Ast.parallel_loops with
    | l :: _ -> l
    | [] -> Alcotest.fail "no #pragma parallel loop in test program"
  in
  let r = Privatize.Analyze.analyze p lid in
  (r.Privatize.Analyze.profile, r.Privatize.Analyze.classification)

(* Sites whose pretty-printed lvalue matches [text]. *)
let aids_for (g : Depgraph.Graph.t) text =
  List.filter_map
    (fun (s : Depgraph.Graph.site) ->
      if String.equal s.Depgraph.Graph.s_text text then
        Some s.Depgraph.Graph.s_aid
      else None)
    g.Depgraph.Graph.sites

let aid_for g text =
  match aids_for g text with
  | [ a ] -> a
  | [] -> Alcotest.failf "no site for %s" text
  | l -> List.hd l

(* --- Figure 1 of the paper: zptr is initialized then used in every
   iteration -> all zptr accesses are thread-private. --- *)
let fig1_zptr = {|
int main(void)
{
  int m = 64;
  int *zptr = (int *)malloc(sizeof(int) * m);
  int b = 0;
  int round = 0;
  int k;
#pragma parallel
  while (round < 20) {
    for (k = 0; k < m; k++)
      zptr[k] = round + k;
    for (k = 0; k < m; k++)
      b += zptr[k];
    round++;
  }
  printf("%d\n", b);
  return 0;
}|}

let fig1_private_zptr () =
  let prof, cls = classify_first_loop fig1_zptr in
  let g = prof.Depgraph.Profiler.graph in
  (* The zptr element store and load form one private class. *)
  let store_aid =
    List.find_map
      (fun (s : Depgraph.Graph.site) ->
        if
          s.Depgraph.Graph.s_kind = Visit.Store
          && Depgraph.Graph.dyn_count g s.Depgraph.Graph.s_aid >= 20 * 64
        then Some s.Depgraph.Graph.s_aid
        else None)
      g.Depgraph.Graph.sites
  in
  (match store_aid with
  | Some aid ->
    Alcotest.(check bool)
      "zptr store is private" true
      (Privatize.Classify.is_private cls aid)
  | None -> Alcotest.fail "zptr element store not found");
  (* b accumulates across iterations: carried flow -> shared. *)
  let b_aid = aid_for g "b" in
  Alcotest.(check bool) "b is shared" false
    (Privatize.Classify.is_private cls b_aid);
  Alcotest.(check bool) "b carries flow" true
    (Depgraph.Graph.in_carried_flow g b_aid)

let fig1_doacross () =
  let _, cls = classify_first_loop fig1_zptr in
  (* the b accumulation makes the loop DOACROSS *)
  Alcotest.(check bool) "doacross" true
    (Privatize.Classify.parallelism_kind cls = `Doacross)

(* --- A clean DOALL loop: disjoint writes per iteration. --- *)
let doall_src = {|
int out[100];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 100; i++) {
    int t = i * i;
    out[i] = t;
  }
  printf("%d\n", out[99]);
  return 0;
}|}

let doall_classified () =
  let prof, cls = classify_first_loop doall_src in
  let g = prof.Depgraph.Profiler.graph in
  Alcotest.(check bool) "doall" true
    (Privatize.Classify.parallelism_kind cls = `Doall);
  (* out[i] is written once per iteration, never carried: it is
     downwards-exposed (read after the loop), hence shared. *)
  let out_store =
    List.find
      (fun (s : Depgraph.Graph.site) ->
        s.Depgraph.Graph.s_kind = Visit.Store
        && String.equal s.Depgraph.Graph.s_text "out[i]")
      g.Depgraph.Graph.sites
  in
  Alcotest.(check bool) "out[i] downwards exposed" true
    (Depgraph.Graph.is_downwards_exposed g out_store.Depgraph.Graph.s_aid);
  (* t is written then read in each iteration: carried output dep on
     itself across iterations, no exposure -> private. *)
  let t_store = aid_for g "t" in
  Alcotest.(check bool) "t private" true
    (Privatize.Classify.is_private cls t_store)

(* --- Upwards-exposed load: reading data defined before the loop. --- *)
let upward_src = {|
int tab[10];
int main(void)
{
  int i;
  int s = 0;
  for (i = 0; i < 10; i++) tab[i] = i;
#pragma parallel
  for (i = 0; i < 10; i++) {
    s += tab[i];
  }
  return s;
}|}

let upwards_exposed_detected () =
  let prof, cls = classify_first_loop upward_src in
  let g = prof.Depgraph.Profiler.graph in
  let tab_load =
    List.find
      (fun (s : Depgraph.Graph.site) ->
        s.Depgraph.Graph.s_kind = Visit.Load
        && String.equal s.Depgraph.Graph.s_text "tab[i]")
      g.Depgraph.Graph.sites
  in
  Alcotest.(check bool) "tab[i] upwards-exposed" true
    (Depgraph.Graph.is_upwards_exposed g tab_load.Depgraph.Graph.s_aid);
  Alcotest.(check bool) "tab[i] shared" false
    (Privatize.Classify.is_private cls tab_load.Depgraph.Graph.s_aid)

(* --- The Section 3.2 example: ambiguous *p merges classes via a
   loop-independent dependence. --- *)
let ambiguous_src = {|
int a[100];
int b;
int main(void)
{
  int i;
  int acc = 0;
#pragma parallel
  for (i = 0; i < 100; i++) {
    int c = i % 2;
    int *p;
    if (c) p = &b;
    else p = &a[i];
    *p = 0;
    if (c) { a[i] = *p + 1; acc += a[i]; }
  }
  printf("%d\n", acc);
  return 0;
}|}

let ambiguous_classes_merged () =
  let prof, cls = classify_first_loop ambiguous_src in
  let g = prof.Depgraph.Profiler.graph in
  (* The load *p and store *p are related by a loop-independent flow
     dependence, so they are in the same class and share a verdict. *)
  let store_p =
    List.find
      (fun (s : Depgraph.Graph.site) ->
        s.Depgraph.Graph.s_kind = Visit.Store
        && String.equal s.Depgraph.Graph.s_text "*p")
      g.Depgraph.Graph.sites
  in
  let load_p =
    List.find
      (fun (s : Depgraph.Graph.site) ->
        s.Depgraph.Graph.s_kind = Visit.Load
        && String.equal s.Depgraph.Graph.s_text "*p")
      g.Depgraph.Graph.sites
  in
  let same_class =
    List.exists
      (fun (cls_members, _, _) ->
        List.mem store_p.Depgraph.Graph.s_aid cls_members
        && List.mem load_p.Depgraph.Graph.s_aid cls_members)
      cls.Privatize.Classify.classes
  in
  Alcotest.(check bool) "store *p and load *p in one class" true same_class;
  Alcotest.(check bool) "same verdict" true
    (Privatize.Classify.verdict cls store_p.Depgraph.Graph.s_aid
    = Privatize.Classify.verdict cls load_p.Depgraph.Graph.s_aid)

(* --- Dependences through a called function are captured. --- *)
let callee_src = {|
int scratch[8];
int use(int i)
{
  scratch[0] = i;
  return scratch[0] + 1;
}
int main(void)
{
  int i;
  int last = 0;
#pragma parallel
  for (i = 0; i < 50; i++) {
    last = use(i);
  }
  printf("%d\n", last);
  return 0;
}|}

let callee_accesses_tracked () =
  let prof, cls = classify_first_loop callee_src in
  let g = prof.Depgraph.Profiler.graph in
  let scratch_store =
    List.find
      (fun (s : Depgraph.Graph.site) ->
        s.Depgraph.Graph.s_kind = Visit.Store
        && String.equal s.Depgraph.Graph.s_text "scratch[0]")
      g.Depgraph.Graph.sites
  in
  (* scratch[0] is written then read each iteration, never exposed:
     private even though it lives in a callee. *)
  Alcotest.(check bool) "callee scratch[0] is private" true
    (Privatize.Classify.is_private cls scratch_store.Depgraph.Graph.s_aid)

(* --- Figure 8 breakdown: counts partition the dynamic accesses. --- *)
let breakdown_partitions () =
  let prof, cls = classify_first_loop fig1_zptr in
  let g = prof.Depgraph.Profiler.graph in
  let b = Privatize.Classify.breakdown cls in
  let total =
    List.fold_left
      (fun acc (s : Depgraph.Graph.site) ->
        acc + Depgraph.Graph.dyn_count g s.Depgraph.Graph.s_aid)
      0 g.Depgraph.Graph.sites
  in
  Alcotest.(check int) "partition sums to total" total
    (b.Privatize.Classify.free_of_carried + b.Privatize.Classify.expandable
   + b.Privatize.Classify.with_carried);
  Alcotest.(check bool) "some accesses expandable" true
    (b.Privatize.Classify.expandable > 0)

(* --- Heap recycling must not create phantom dependences: a freed and
   reallocated block is a fresh value (the profiler sees the write by
   the allocator... here we check a malloc/free-per-iteration loop has
   no carried flow on the node contents). --- *)
let malloc_free_loop = {|
struct node { int v; int w; };
int main(void)
{
  int i;
  int acc = 0;
#pragma parallel
  for (i = 0; i < 40; i++) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i;
    n->w = n->v * 2;
    acc += n->w;
    free(n);
  }
  printf("%d\n", acc);
  return 0;
}|}

let recycled_heap_no_carried_flow () =
  let prof, _cls = classify_first_loop malloc_free_loop in
  let g = prof.Depgraph.Profiler.graph in
  let nv_store = aid_for g "n->v" in
  Alcotest.(check bool) "n->v has no carried flow" false
    (Depgraph.Graph.in_carried_flow g nv_store)

let loop_stats () =
  let prof, _ = classify_first_loop doall_src in
  let g = prof.Depgraph.Profiler.graph in
  Alcotest.(check int) "iterations" 100 g.Depgraph.Graph.iterations;
  Alcotest.(check int) "invocations" 1 g.Depgraph.Graph.invocations;
  Alcotest.(check bool) "loop cycles positive" true (g.Depgraph.Graph.loop_cycles > 0);
  Alcotest.(check bool) "loop within total" true
    (g.Depgraph.Graph.loop_cycles <= g.Depgraph.Graph.total_cycles)

(* --- Union-find properties. --- *)
let uf_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~count:200 ~name:"union-find: union implies same class"
         (pair (list (pair small_nat small_nat)) (pair small_nat small_nat))
         (fun (unions, (a, b)) ->
           let uf = Privatize.Union_find.create () in
           List.iter (fun (x, y) -> Privatize.Union_find.union uf x y) unions;
           Privatize.Union_find.union uf a b;
           Privatize.Union_find.same uf a b));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:200 ~name:"union-find: classes partition members"
         (list (pair small_nat small_nat))
         (fun unions ->
           let uf = Privatize.Union_find.create () in
           List.iter (fun (x, y) -> Privatize.Union_find.union uf x y) unions;
           let classes = Privatize.Union_find.classes uf in
           let members = List.concat classes in
           let sorted = List.sort_uniq compare members in
           List.length sorted = List.length members
           && List.for_all
                (fun cls ->
                  List.for_all
                    (fun x -> Privatize.Union_find.same uf (List.hd cls) x)
                    cls)
                classes));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:200 ~name:"union-find: transitivity"
         (triple small_nat small_nat small_nat)
         (fun (a, b, c) ->
           let uf = Privatize.Union_find.create () in
           Privatize.Union_find.union uf a b;
           Privatize.Union_find.union uf b c;
           Privatize.Union_find.same uf a c));
  ]

let () =
  Alcotest.run "depgraph"
    [
      ( "profiling",
        [
          Alcotest.test_case "fig1 zptr private" `Quick fig1_private_zptr;
          Alcotest.test_case "fig1 doacross" `Quick fig1_doacross;
          Alcotest.test_case "doall classified" `Quick doall_classified;
          Alcotest.test_case "upwards exposed" `Quick upwards_exposed_detected;
          Alcotest.test_case "ambiguous classes merged" `Quick
            ambiguous_classes_merged;
          Alcotest.test_case "callee accesses tracked" `Quick
            callee_accesses_tracked;
          Alcotest.test_case "breakdown partitions" `Quick breakdown_partitions;
          Alcotest.test_case "recycled heap" `Quick
            recycled_heap_no_carried_flow;
          Alcotest.test_case "loop stats" `Quick loop_stats;
        ] );
      ("union-find", uf_tests);
    ]
