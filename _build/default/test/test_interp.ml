(* Interpreter tests: semantics of the MiniC abstract machine. *)

open Minic

let run src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  Interp.Machine.run_program p

let check_output name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let code, out = run src in
      Alcotest.(check int) "exit code" 0 code;
      Alcotest.(check string) "output" expected out)

let check_exit name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let code, _ = run src in
      Alcotest.(check int) "exit code" expected code)

let semantics_tests =
  [
    check_exit "return value" "int main(void){ return 42; }" 42;
    check_exit "arith" "int main(void){ return 2 + 3 * 4 - 24 / 4 % 4; }" 12;
    check_output "printf int" {|int main(void){ printf("%d\n", 7 * 6); return 0; }|} "42\n";
    check_output "printf width"
      {|int main(void){ printf("[%5d][%-5d][%05d]\n", 42, 42, 42); return 0; }|}
      "[   42][42   ][00042]\n";
    check_output "printf float"
      {|int main(void){ printf("%.2f %.3e\n", 3.14159, 1234.5); return 0; }|}
      "3.14 1.234e+03\n";
    check_output "printf string char"
      {|int main(void){ printf("%s|%c\n", "hey", 'z'); return 0; }|} "hey|z\n";
    check_exit "int32 wraparound"
      "int main(void){ int x = 2147483647; x = x + 1; return x == -2147483647 - 1; }"
      1;
    check_exit "long no wrap"
      "int main(void){ long x = 2147483647L; x = x + 1; return x > 0; }" 1;
    check_exit "char truncation"
      "int main(void){ char c = 300; return c; }" 44;
    check_exit "short sign extension"
      "int main(void){ short s = -2; int x = s; return x == -2; }" 1;
    check_exit "division" "int main(void){ return -7 / 2 + 10; }" 7;
    check_exit "modulo" "int main(void){ return -7 % 3 + 10; }" 9;
    check_exit "shifts" "int main(void){ int x = 1 << 10; return x >> 4; }" 64;
    check_exit "bitops" "int main(void){ return (12 & 10) | (1 ^ 3); }" 10;
    check_exit "comparisons"
      "int main(void){ return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }"
      4;
    check_exit "short circuit and"
      "int main(void){ int *p = 0; if (p != 0 && *p == 1) return 1; return 2; }" 2;
    check_exit "short circuit or"
      "int main(void){ int x = 1; if (x == 1 || 1 / 0) return 5; return 0; }" 5;
    check_exit "ternary" "int main(void){ int a = 3; return a > 2 ? 10 : 20; }" 10;
    check_exit "float to int trunc"
      "int main(void){ double d = 3.99; return (int)d; }" 3;
    check_exit "int to float"
      "int main(void){ int i = 7; double d = i; return (int)(d / 2.0 * 2.0); }" 7;
    check_exit "float32 rounding"
      "int main(void){ float f = 0.1f; double d = f; return d != 0.1; }" 1;
    check_exit "negative float"
      "int main(void){ double d = -2.5; return (int)fabs(d * 2.0); }" 5;
    check_exit "sqrt" "int main(void){ return (int)sqrt(144.0); }" 12;
  ]

let pointer_tests =
  [
    check_exit "address of local"
      "int main(void){ int x = 1; int *p = &x; *p = 9; return x; }" 9;
    check_exit "pointer arithmetic"
      "int main(void){ int a[5]; int *p = a; int i; for(i=0;i<5;i++) a[i]=i*i; p = p + 3; return *p; }"
      9;
    check_exit "pointer difference"
      "int main(void){ int a[10]; int *p = &a[7]; int *q = &a[2]; return (int)(p - q); }"
      5;
    check_exit "pointer indexing"
      "int main(void){ int *p = (int *)malloc(sizeof(int) * 4); p[2] = 7; int r = p[2]; free(p); return r; }"
      7;
    check_exit "double pointer"
      "int main(void){ int x = 3; int *p = &x; int **pp = &p; **pp = 8; return x; }"
      8;
    check_exit "struct fields"
      "struct pt { int x; int y; }; int main(void){ struct pt p; p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }"
      25;
    check_exit "struct pointer arrow"
      "struct pt { int x; int y; }; int main(void){ struct pt p; struct pt *q = &p; q->x = 5; return p.x; }"
      5;
    check_exit "linked list"
      {|
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  int i;
  for (i = 0; i < 5; i++) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  int s = 0;
  while (head != 0) { s = s * 10 + head->v; struct node *d = head; head = head->next; free(d); }
  return s;
}|}
      43210;
    check_exit "array of structs"
      "struct s { char tag; int v; }; int main(void){ struct s a[3]; int i; for(i=0;i<3;i++){ a[i].tag = 65 + i; a[i].v = i * 100; } return a[2].v + a[1].tag; }"
      266;
    check_exit "2d array"
      "int main(void){ int m[3][4]; int i; int j; for(i=0;i<3;i++) for(j=0;j<4;j++) m[i][j] = i * 10 + j; return m[2][3]; }"
      23;
    check_exit "global array init"
      "int tab[4] = {1, 2, 3, 4}; int main(void){ return tab[0] + tab[3] * 10; }" 41;
    check_exit "global struct init"
      "struct c { int a; int b; }; struct c g = {7, 9}; int main(void){ return g.a * g.b; }"
      63;
    check_exit "recast short int"
      (* bzip2's zptr idiom: write ints, read shorts (little-endian) *)
      "int main(void){ int *zptr = (int *)malloc(16); zptr[0] = 0x00030002; short *s = (short *)zptr; int r = s[0] * 10 + s[1]; free(zptr); return r; }"
      23;
    check_exit "memset memcpy"
      "int main(void){ char a[8]; char b[8]; memset(a, 7, 8L); memcpy(b, a, 8L); return b[0] + b[7]; }"
      14;
    check_exit "realloc preserves"
      "int main(void){ int *p = (int *)malloc(8); p[0] = 11; p[1] = 22; p = (int *)realloc(p, 64); return p[0] + p[1]; }"
      33;
    check_exit "calloc zeroes"
      "int main(void){ int *p = (int *)calloc(4L, 4L); return p[0] + p[3]; }" 0;
    check_exit "malloc reuse after free"
      {|int main(void){
         int i; int leak = 0;
         for (i = 0; i < 1000; i++) {
           int *p = (int *)malloc(64);
           p[0] = i;
           free(p);
         }
         return leak;
       }|}
      0;
    check_exit "string functions"
      {|int main(void){ return (int)strlen("hello"); }|} 5;
    check_exit "void pointer roundtrip"
      "int main(void){ int x = 5; void *v = &x; int *p = (int *)v; return *p; }" 5;
  ]

let control_tests =
  [
    check_exit "recursion fib"
      "int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void){ return fib(12); }"
      144;
    check_exit "mutual recursion"
      "int odd(int n); int even(int n){ if (n == 0) return 1; return odd(n-1); } int odd(int n){ if (n == 0) return 0; return even(n-1); } int main(void){ return even(10) * 10 + odd(10); }"
      10;
    check_exit "break" "int main(void){ int i; int s = 0; for(i=0;i<100;i++){ if (i == 5) break; s += i; } return s; }" 10;
    check_exit "continue"
      "int main(void){ int i; int s = 0; for(i=0;i<10;i++){ if (i % 2 == 0) continue; s += i; } return s; }"
      25;
    check_exit "while with break"
      "int main(void){ int n = 0; while (1) { n++; if (n >= 7) break; } return n; }" 7;
    check_exit "nested loops"
      "int main(void){ int i; int j; int c = 0; for(i=0;i<4;i++) for(j=0;j<=i;j++) c++; return c; }"
      10;
    check_exit "early return in loop"
      "int find(int *a, int n, int x){ int i; for(i=0;i<n;i++) if (a[i] == x) return i; return -1; } int main(void){ int a[5] = {0, 0, 0, 0, 0}; int i; for(i=0;i<5;i++) a[i] = i * 3; return find(a, 5, 9); }"
      3;
    check_exit "globals across calls"
      "int counter; void tick(void){ counter++; } int main(void){ int i; for(i=0;i<9;i++) tick(); return counter; }"
      9;
    check_exit "exit builtin" "int main(void){ exit(3); return 0; }" 3;
    check_exit "pass by value"
      "void bump(int x){ x = x + 1; } int main(void){ int x = 5; bump(x); return x; }" 5;
    check_exit "pass pointer"
      "void bump(int *x){ *x = *x + 1; } int main(void){ int x = 5; bump(&x); return x; }" 6;
    check_exit "rand deterministic"
      "int main(void){ srand(42); int a = rand(); srand(42); int b = rand(); return a == b; }"
      1;
  ]

let failure_tests =
  let expect_error name src =
    Alcotest.test_case name `Quick (fun () ->
        let p = Typecheck.parse_and_check ~file:name src in
        match Interp.Machine.run_program p with
        | exception Interp.Machine.Runtime_error _ -> ()
        | exception Interp.Memory.Fault _ -> ()
        | code, _ -> Alcotest.failf "expected a runtime error, got exit %d" code)
  in
  [
    expect_error "null deref" "int main(void){ int *p = 0; return *p; }";
    expect_error "division by zero" "int main(void){ int z = 0; return 1 / z; }";
    expect_error "modulo by zero" "int main(void){ int z = 0; return 1 % z; }";
    expect_error "assert failure" "int main(void){ assert(1 == 2); return 0; }";
    expect_error "wild pointer" "int main(void){ int *p = (int *)7; return *p; }";
    Alcotest.test_case "infinite loop fuel" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int main(void){ int x = 0; while (1) { x++; if (x == -1) break; } return 0; }"
        in
        let m = Interp.Machine.load p in
        m.Interp.Machine.st.Interp.Machine.fuel <- 100_000;
        match Interp.Machine.run m with
        | exception Interp.Machine.Runtime_error _ -> ()
        | code -> Alcotest.failf "expected fuel exhaustion, got exit %d" code);
    expect_error "stack overflow"
      "int deep(int n){ int pad[512]; pad[0] = n; return deep(n + 1) + pad[0]; } int main(void){ return deep(0); }";
  ]

(* Cost accounting sanity: cycles and stats move as expected. *)
let accounting_tests =
  [
    Alcotest.test_case "cycles monotone with work" `Quick (fun () ->
        let cycles src =
          let p = Typecheck.parse_and_check src in
          let m = Interp.Machine.load p in
          ignore (Interp.Machine.run m);
          m.Interp.Machine.st.Interp.Machine.cycles
        in
        let small = cycles "int main(void){ int i; int s=0; for(i=0;i<10;i++) s+=i; return 0; }" in
        let big = cycles "int main(void){ int i; int s=0; for(i=0;i<1000;i++) s+=i; return 0; }" in
        Alcotest.(check bool) "more iterations cost more" true (big > 50 * small / 10));
    Alcotest.test_case "stats counters" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int main(void){ int a[100]; int i; for(i=0;i<100;i++) a[i] = i; return 0; }"
        in
        let m = Interp.Machine.load p in
        ignore (Interp.Machine.run m);
        let stats = m.Interp.Machine.st.Interp.Machine.stats in
        Alcotest.(check bool) "at least 100 stores" true (stats.Interp.Machine.n_stores >= 100);
        Alcotest.(check bool) "at least 100 branches" true (stats.Interp.Machine.n_branches >= 100));
    Alcotest.test_case "observer sees accesses" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int g; int main(void){ g = 5; int x = g; return x; }"
        in
        let m = Interp.Machine.load p in
        let seen = ref [] in
        m.Interp.Machine.st.Interp.Machine.observer <-
          Some (fun aid kind addr size -> seen := (aid, kind, addr, size) :: !seen);
        ignore (Interp.Machine.run m);
        let stores =
          List.filter (fun (_, k, _, _) -> k = Minic.Visit.Store) !seen
        in
        let loads = List.filter (fun (_, k, _, _) -> k = Minic.Visit.Load) !seen in
        Alcotest.(check bool) "stores observed" true (List.length stores >= 2);
        Alcotest.(check bool) "loads observed" true (List.length loads >= 1);
        (* the store to g and the load of g hit the same address *)
        let g_addr =
          Interp.Machine.global_addr m.Interp.Machine.st "g"
        in
        Alcotest.(check bool) "g's address accessed" true
          (List.exists (fun (_, _, a, _) -> a = g_addr) !seen));
    Alcotest.test_case "peak memory tracks heap" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int main(void){ int i; for(i=0;i<10;i++){ char *p = (char *)malloc(1000); free(p); } return 0; }"
        in
        let m = Interp.Machine.load p in
        let before = Interp.Memory.peak_bytes m.Interp.Machine.st.Interp.Machine.mem in
        ignore (Interp.Machine.run m);
        let after = Interp.Memory.peak_bytes m.Interp.Machine.st.Interp.Machine.mem in
        (* free-list reuse keeps peak growth to ~one block, not ten *)
        Alcotest.(check bool) "peak grew modestly" true (after - before < 3000));
    Alcotest.test_case "loop hook fires" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int main(void){ int i; int s = 0; for(i=0;i<7;i++) s += i; return 0; }"
        in
        let m = Interp.Machine.load p in
        let iters = ref 0 and enters = ref 0 and exits = ref 0 in
        m.Interp.Machine.st.Interp.Machine.loop_hook <-
          Some
            (fun _lid ev ->
              match ev with
              | Interp.Machine.Enter -> incr enters
              | Interp.Machine.Iter _ -> incr iters
              | Interp.Machine.Exit -> incr exits);
        ignore (Interp.Machine.run m);
        Alcotest.(check int) "enter once" 1 !enters;
        (* 7 executed iterations plus the trailing failed-condition test *)
        Alcotest.(check int) "8 iter events" 8 !iters;
        Alcotest.(check int) "exit once" 1 !exits);
  ]

(* qcheck property: interpretation of integer arithmetic expressions
   agrees with a reference big-step evaluator over int64 with 32-bit
   truncation. *)
let gen_arith : (string * int64) QCheck.Gen.t =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      let* v = int_range 0 1000 in
      return (string_of_int v, Int64.of_int v)
    else
      let* op = oneofl [ "+"; "-"; "*" ] in
      let* l, lv = gen (n / 2) in
      let* r, rv = gen (n / 2) in
      let f =
        match op with
        | "+" -> Int64.add
        | "-" -> Int64.sub
        | _ -> Int64.mul
      in
      let trunc v = Int64.shift_right (Int64.shift_left v 32) 32 in
      return (Printf.sprintf "(%s %s %s)" l op r, trunc (f lv rv))
  in
  gen 6

let arith_agrees =
  QCheck.Test.make ~count:200 ~name:"interpreted arithmetic agrees with reference"
    (QCheck.make gen_arith ~print:fst)
    (fun (src, expected) ->
      let code, out =
        run (Printf.sprintf "int main(void){ printf(\"%%d\", %s); return 0; }" src)
      in
      code = 0 && Int64.of_string out = expected)

let () =
  Alcotest.run "interp"
    [
      ("semantics", semantics_tests);
      ("pointers", pointer_tests);
      ("control", control_tests);
      ("failures", failure_tests);
      ("accounting", accounting_tests);
      ("properties", [ QCheck_alcotest.to_alcotest arith_agrees ]);
    ]
