test/test_memory.ml: Alcotest Int64 Interp QCheck QCheck_alcotest
