test/test_expand.mli:
