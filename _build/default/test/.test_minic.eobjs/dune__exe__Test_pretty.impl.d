test/test_pretty.ml: Alcotest Ast List Minic Parser Pretty Printf Typecheck Types
