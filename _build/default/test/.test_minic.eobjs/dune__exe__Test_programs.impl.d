test/test_programs.ml: Alcotest Array Ast Expand Filename Interp List Minic Parexec Pretty Printf Privatize Sys Typecheck
