test/test_interp.ml: Alcotest Int64 Interp List Minic Printf QCheck QCheck_alcotest Typecheck
