test/test_expand.ml: Alcotest Array Ast Expand Hashtbl Interp List Minic Parexec Printf Privatize QCheck QCheck_alcotest Runtimepriv String Typecheck
