test/test_parexec.mli:
