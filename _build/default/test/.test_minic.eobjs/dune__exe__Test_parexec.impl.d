test/test_parexec.ml: Alcotest Array Ast Expand Interp List Minic Parexec Printf Privatize Typecheck
