test/test_minic.ml: Alcotest Array Ast Hashtbl Lexer List Loc Minic Option Parser Pretty Printf QCheck QCheck_alcotest String Typecheck Types Visit
