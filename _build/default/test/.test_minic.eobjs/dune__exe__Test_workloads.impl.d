test/test_workloads.ml: Alcotest Ast Depgraph Expand Interp List Minic Parexec Printf Privatize Typecheck Workloads
