test/test_interleaved.ml: Alcotest Ast Expand Harness Interp List Minic Parexec Printf Privatize Typecheck
