test/test_depgraph.mli:
