test/test_optim.ml: Alcotest Alias Ast Interp List Minic Optim Option String Typecheck Visit
