test/test_depgraph.ml: Alcotest Ast Depgraph List Minic Privatize QCheck QCheck_alcotest String Test Typecheck Visit
