(* Golden tests for the pretty-printer: exact renderings of the
   constructs the transformed programs rely on, plus declarator
   inside-out round-trips. *)

open Minic

let exp src = Pretty.exp_text (Parser.parse_exp_string src)

let exp_cases =
  [
    ("precedence kept", "a + b * c", "a + b * c");
    ("parens preserved where needed", "(a + b) * c", "(a + b) * c");
    ("redundant parens dropped", "(a * b) + c", "a * b + c");
    ("comparison nesting", "a < b == c", "a < b == c");
    ("forced comparison parens", "a < (b == c)", "a < (b == c)");
    ("shift vs add", "a << b + c", "a << b + c");
    ("deref of sum", "*(p + 1)", "*(p + 1)");
    ("address of element", "&a[i]", "&a[i]");
    ("arrow chain", "p->next->value", "p->next->value");
    ("cast then index", "((int *)q)[2]", "*((int *)q + 2)");
    ("ternary", "a ? b : c + 1", "a ? b : c + 1");
    ("logical mix", "a && b || c", "a && b || c");
    ("unary minus stacking", "-(-x)", "-(-x)");
    ("sizeof type", "sizeof(struct s *)", "sizeof(struct s *)");
  ]

let decl_cases =
  [
    ("scalar", Types.Tint Types.IInt, "x", "int x");
    ("pointer", Types.Tptr (Types.Tint Types.IChar), "p", "char *p");
    ( "array of pointers",
      Types.Tarray (Types.Tptr (Types.Tint Types.IInt), 10),
      "a",
      "int *a[10]" );
    ( "pointer to array",
      Types.Tptr (Types.Tarray (Types.Tint Types.IInt, 16)),
      "p",
      "int (*p)[16]" );
    ( "2-d array",
      Types.Tarray (Types.Tarray (Types.Tfloat Types.FDouble, 4), 3),
      "m",
      "double m[3][4]" );
    ( "pointer to pointer",
      Types.Tptr (Types.Tptr Types.Tvoid),
      "pp",
      "void **pp" );
  ]

(* A declarator printed by ty_decl must parse back to the same type. *)
let decl_roundtrip (t : Types.ty) name () =
  let printed = Pretty.ty_decl t name ^ ";" in
  let prog = Typecheck.parse_and_check ("int main(void){ return 0; } " ^ printed) in
  match Ast.find_gvar prog name with
  | Some (t', _) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s round-trips" printed)
      true (Types.equal_ty t t')
  | None -> Alcotest.fail "declaration lost"

let () =
  Alcotest.run "pretty"
    [
      ( "expressions",
        List.map
          (fun (name, src, expected) ->
            Alcotest.test_case name `Quick (fun () ->
                Alcotest.(check string) name expected (exp src)))
          exp_cases );
      ( "declarators",
        List.concat_map
          (fun (name, t, var, expected) ->
            [
              Alcotest.test_case (name ^ " text") `Quick (fun () ->
                  Alcotest.(check string) name expected (Pretty.ty_decl t var));
              Alcotest.test_case (name ^ " roundtrip") `Quick
                (decl_roundtrip t var);
            ])
          decl_cases );
    ]
